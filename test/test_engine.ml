(* Tests for the discrete-event engine: time, RNG, distributions, the event
   queue and the simulation driver. The trace ring moved to [Vessel_obs]
   (see test_obs.ml). *)

open Vessel_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_int "us" 1_500 (Time.us 1.5);
  check_int "ms" 2_000_000 (Time.ms 2.);
  check_int "s" 1_000_000_000 (Time.s 1.);
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Time.to_us 1_500);
  Alcotest.(check (float 1e-9)) "to_ms" 0.002 (Time.to_ms 2_000);
  Alcotest.(check (float 1e-12)) "to_s" 1e-6 (Time.to_s 1_000)

let test_time_of_cycles () =
  (* 2.1 GHz: 21 cycles = 10 ns *)
  check_int "21 cycles @2.1GHz" 10 (Time.of_cycles ~ghz:2.1 21);
  check_int "zero cycles" 0 (Time.of_cycles ~ghz:2.1 0);
  check_int "1 cycle never rounds to 0" 1 (Time.of_cycles ~ghz:3.0 1)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "us" "1.500us" (Time.to_string 1_500);
  Alcotest.(check string) "ms" "2.000ms" (Time.to_string 2_000_000)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits a <> Rng.bits b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let c1 = Rng.split a in
  let c2 = Rng.split a in
  check_bool "children differ" true (Rng.bits c1 <> Rng.bits c2)

let test_rng_copy () =
  let a = Rng.create ~seed:11 in
  let _ = Rng.bits a in
  let b = Rng.copy a in
  check_int "copy replays" (Rng.bits a) (Rng.bits b)

let test_rng_int_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let v = Rng.float r in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_int_rejects_bad_bound () =
  let r = Rng.create ~seed:5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean d n seed =
  let r = Rng.create ~seed in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Dist.sample d r
  done;
  !total /. float_of_int n

let test_dist_constant () =
  let d = Dist.constant 42. in
  let r = Rng.create ~seed:1 in
  Alcotest.(check (float 0.)) "constant" 42. (Dist.sample d r);
  Alcotest.(check (float 0.)) "mean" 42. (Dist.mean d)

let test_dist_exponential_mean () =
  let d = Dist.exponential ~mean:1000. in
  let m = sample_mean d 50_000 2 in
  check_bool "empirical mean near 1000" true (Float.abs (m -. 1000.) < 30.)

let test_dist_uniform_mean () =
  let d = Dist.uniform ~lo:10. ~hi:20. in
  let m = sample_mean d 20_000 3 in
  check_bool "mean near 15" true (Float.abs (m -. 15.) < 0.3);
  Alcotest.(check (float 1e-9)) "analytic" 15. (Dist.mean d)

let test_dist_lognormal_quantiles () =
  (* Silo/TPC-C fit: p50 = 20us, p999 = 280us (paper section 6.1). *)
  let d = Dist.lognormal_of_quantiles ~p50:20_000. ~p999:280_000. in
  let r = Rng.create ~seed:4 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Dist.sample d r) in
  Array.sort compare xs;
  let p50 = xs.(n / 2) and p999 = xs.(n * 999 / 1000) in
  check_bool "p50 ~ 20us" true (Float.abs (p50 -. 20_000.) /. 20_000. < 0.05);
  check_bool "p999 ~ 280us" true
    (Float.abs (p999 -. 280_000.) /. 280_000. < 0.12)

let test_dist_bimodal () =
  let d = Dist.bimodal ~p:0.1 ~lo:1. ~hi:100. in
  let m = sample_mean d 100_000 5 in
  let expected = Dist.mean d in
  Alcotest.(check (float 1e-9)) "analytic mean" 10.9 expected;
  check_bool "empirical near analytic" true (Float.abs (m -. expected) < 0.5)

let test_dist_mixture () =
  let d = Dist.mixture [ (1., Dist.constant 2.); (3., Dist.constant 10.) ] in
  Alcotest.(check (float 1e-9)) "weighted mean" 8. (Dist.mean d);
  let m = sample_mean d 50_000 6 in
  check_bool "empirical" true (Float.abs (m -. 8.) < 0.2)

let test_dist_shifted () =
  let d = Dist.shifted 5. (Dist.constant 1.) in
  let r = Rng.create ~seed:1 in
  Alcotest.(check (float 0.)) "shifted" 6. (Dist.sample d r)

let test_dist_pareto_positive () =
  let d = Dist.pareto ~shape:2. ~scale:3. in
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1_000 do
    check_bool "sample >= scale" true (Dist.sample d r >= 3.)
  done;
  Alcotest.(check (float 1e-9)) "mean" 6. (Dist.mean d)

let test_dist_invalid_args () =
  Alcotest.check_raises "bad quantiles"
    (Invalid_argument "Dist.lognormal_of_quantiles: need 0 < p50 < p999")
    (fun () -> ignore (Dist.lognormal_of_quantiles ~p50:10. ~p999:5.))

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_eq_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:30 "c");
  ignore (Event_queue.add q ~time:10 "a");
  ignore (Event_queue.add q ~time:20 "b");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ x1; x2; x3 ]

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.add q ~time:5 i)
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order at same time"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !out)

let test_eq_cancel () =
  let q = Event_queue.create () in
  let _h1 = Event_queue.add q ~time:1 "keep1" in
  let h2 = Event_queue.add q ~time:2 "drop" in
  let _h3 = Event_queue.add q ~time:3 "keep2" in
  Event_queue.cancel q h2;
  check_int "live count" 2 (Event_queue.length q);
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "" in
  let x1 = pop () in
  let x2 = pop () in
  Alcotest.(check (list string)) "cancelled skipped" [ "keep1"; "keep2" ]
    [ x1; x2 ];
  check_bool "empty" true (Event_queue.is_empty q)

let test_eq_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1 () in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  check_int "single decrement" 0 (Event_queue.length q)

let test_eq_cancel_after_pop () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:1 () in
  ignore (Event_queue.pop q);
  Event_queue.cancel q h;
  check_int "no underflow" 0 (Event_queue.length q)

let test_eq_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty peek" None (Event_queue.peek_time q);
  ignore (Event_queue.add q ~time:42 ());
  Alcotest.(check (option int)) "peek" (Some 42) (Event_queue.peek_time q)

let prop_eq_sorted =
  QCheck.Test.make ~name:"event_queue pops sorted" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> ignore (Event_queue.add q ~time ())) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (time, ()) -> drain (time :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare times)

let test_eq_pop_if_before () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:10 "a");
  ignore (Event_queue.add q ~time:20 "b");
  Alcotest.(check (option (pair int string)))
    "earliest after horizon" None
    (Event_queue.pop_if_before q ~horizon:9);
  Alcotest.(check (option (pair int string)))
    "boundary is inclusive" (Some (10, "a"))
    (Event_queue.pop_if_before q ~horizon:10);
  Alcotest.(check (option (pair int string)))
    "next still later" None
    (Event_queue.pop_if_before q ~horizon:15);
  check_int "nothing consumed" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int string)))
    "pops when within" (Some (20, "b"))
    (Event_queue.pop_if_before q ~horizon:1_000);
  Alcotest.(check (option (pair int string)))
    "empty" None
    (Event_queue.pop_if_before q ~horizon:max_int)

let test_eq_pop_if_before_skips_cancelled () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:5 "dead" in
  ignore (Event_queue.add q ~time:30 "live");
  Event_queue.cancel q h;
  Alcotest.(check (option (pair int string)))
    "cancelled head hides earlier time" None
    (Event_queue.pop_if_before q ~horizon:10);
  Alcotest.(check (option (pair int string)))
    "live entry pops" (Some (30, "live"))
    (Event_queue.pop_if_before q ~horizon:30)

let test_eq_drain_before () =
  let q = Event_queue.create () in
  for i = 1 to 5 do
    ignore (Event_queue.add q ~time:(10 * i) i)
  done;
  let out = ref [] in
  Event_queue.drain_before q ~horizon:30 (fun time v -> out := (time, v) :: !out);
  Alcotest.(check (list (pair int int)))
    "drains in order up to horizon"
    [ (10, 1); (20, 2); (30, 3) ]
    (List.rev !out);
  check_int "rest untouched" 2 (Event_queue.length q)

let test_eq_drain_before_reentrant () =
  (* An event at the horizon scheduling another at the horizon must see it
     drained in the same call — run_until's semantics. *)
  let q = Event_queue.create () in
  let fired = ref [] in
  let rec chain n () =
    fired := n :: !fired;
    if n < 3 then ignore (Event_queue.add q ~time:100 (chain (n + 1)))
  in
  ignore (Event_queue.add q ~time:100 (chain 1));
  Event_queue.drain_before q ~horizon:100 (fun _time f -> f ());
  Alcotest.(check (list int)) "chained at horizon" [ 1; 2; 3 ] (List.rev !fired);
  check_bool "drained" true (Event_queue.is_empty q)

(* Entry records are pooled and recycled; a handle kept across its
   entry's reuse must not be able to cancel the new tenant. *)
let test_eq_stale_handle_recycled () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~time:1 "a" in
  ignore (Event_queue.pop q);
  (* The freed slot is recycled by the next add. *)
  let _h2 = Event_queue.add q ~time:2 "b" in
  Event_queue.cancel q h1;
  check_int "stale cancel spares new tenant" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int string)))
    "new tenant intact" (Some (2, "b")) (Event_queue.pop q);
  (* Same for a cancelled-then-collected entry. *)
  let h3 = Event_queue.add q ~time:3 "c" in
  Event_queue.cancel q h3;
  Alcotest.(check (option (pair int string))) "empty" None (Event_queue.pop q);
  let _h4 = Event_queue.add q ~time:4 "d" in
  Event_queue.cancel q h3;
  check_int "doubly stale cancel" 1 (Event_queue.length q)

(* Events routed to every wheel level plus the overflow heap must still
   pop in (time, insertion) order, including adds behind the cursor. *)
let eq_backends = [ ("wheel", Event_queue.Wheel); ("heap", Event_queue.Heap) ]

let test_eq_multi_level backend () =
  let q = Event_queue.create ~backend () in
  let far = (1 lsl 33) + 7 in
  (* level 0 / 1 / 2 / 3 / overflow, interleaved. *)
  let times = [ 20_000_000; 5; 100_000; far; 1_000; 6; far; 100_001 ] in
  List.iteri (fun i time -> ignore (Event_queue.add q ~time (i, time))) times;
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, (i, t')) ->
        check_int "payload time" t t';
        popped := (t, i) :: !popped;
        drain ()
    | None -> ()
  in
  (* Pop two, then add behind the cursor: past adds go to the overflow
     heap and must surface immediately. *)
  (match Event_queue.pop q with
  | Some (t, (i, _)) -> popped := (t, i) :: !popped
  | None -> Alcotest.fail "unexpected empty");
  ignore (Event_queue.add q ~time:0 (99, 0));
  drain ();
  Alcotest.(check (list (pair int int)))
    "global (time, seq) order"
    [ (5, 1); (0, 99); (6, 5); (1_000, 4); (100_000, 2); (100_001, 7);
      (20_000_000, 0); (far, 3); (far, 6) ]
    (List.rev !popped)

(* Steady-state churn must not touch the minor heap: [add] hands out
   immediate handles from the entry pool and [drain_before] recycles in
   place. Budget is per *drain call* (one closure), not per event. *)
let test_eq_zero_alloc () =
  let q = Event_queue.create () in
  let burst = 256 and rounds = 100 in
  let fired = ref 0 in
  let cb _time () = incr fired in
  let churn () =
    for r = 0 to rounds - 1 do
      for i = 1 to burst do
        ignore (Event_queue.add q ~time:((r * burst) + i) ())
      done;
      Event_queue.drain_before q ~horizon:((r + 1) * burst) cb
    done
  in
  churn ();
  (* Pool is now warm: steady churn may not grow it or allocate. *)
  let allocated = Event_queue.pool_allocated q in
  let w0 = Gc.minor_words () in
  churn ();
  let per_event =
    (Gc.minor_words () -. w0) /. float_of_int (burst * rounds)
  in
  check_int "fired" (2 * burst * rounds) !fired;
  check_int "pool did not grow" allocated (Event_queue.pool_allocated q);
  check_bool
    (Printf.sprintf "allocation-free steady state (%.3f words/event)"
       per_event)
    true (per_event < 0.5)

(* Regression: a pop can jump the cursor across a block boundary, into
   a region whose events are still parked in a covering higher-level
   slot. A reentrant add then lands at a lower level, and the scan must
   not return it ahead of the earlier parked event. Found by
   differential fuzzing against the pre-wheel heap queue. *)
let test_eq_covering_slot_drain backend () =
  let q = Event_queue.create ~backend () in
  ignore (Event_queue.add q ~time:0x1f8c5 0);
  Alcotest.(check (option (pair int int)))
    "warm-up pop" (Some (0x1f8c5, 0)) (Event_queue.pop q);
  (* [b] briefly caches as the front, then [c] undercuts it: [b] is
     demoted into a level-2 slot the cursor has not entered yet. *)
  ignore (Event_queue.add q ~time:0x200c8 1);
  ignore (Event_queue.add q ~time:0x200c2 2);
  let popped = ref [] in
  Event_queue.drain_before q ~horizon:0x20804 (fun t id ->
      popped := (t, id) :: !popped;
      (* Popping [c] moves the cursor into [b]'s covering slot; this
         reentrant add lands at level 1 and must not overtake [b]. *)
      if id = 2 then ignore (Event_queue.add q ~time:0x20523 3));
  Alcotest.(check (list (pair int int)))
    "drain order across the cursor jump"
    [ (0x200c2, 2); (0x200c8, 1); (0x20523, 3) ]
    (List.rev !popped)

(* Regression: demoting the front-cache entry must put it at the HEAD
   of its bucket — a same-time event added while it was cached has a
   higher seq and already sits in that bucket. Found by differential
   fuzzing against the pre-wheel heap queue. *)
let test_eq_demoted_front_fifo backend () =
  let q = Event_queue.create ~backend () in
  let t = 0x19eae in
  ignore (Event_queue.add q ~time:t 0);
  (* same time, higher seq: goes to the bucket while 0 is the front *)
  ignore (Event_queue.add q ~time:t 1);
  (* earlier time: demotes 0 into the same bucket, behind 1 if naive *)
  ignore (Event_queue.add q ~time:0x19408 2);
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (time, id) ->
        popped := (time, id) :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair int int)))
    "same-time FIFO survives front demotion"
    [ (0x19408, 2); (t, 0); (t, 1) ]
    (List.rev !popped)

(* Model-based test: random add/cancel/pop/pop_if_before/drain_before
   sequences against a sorted-association-list reference, exercising the
   lazy-deletion path (cancelled entries linger until they surface) and,
   for the wheel backend, cascades and the overflow heap. *)

type eq_op =
  | Add of int
  | Cancel of int
  | Pop
  | Pop_before of int
  | Drain_before of int

(* Times at wheel-level scale: mostly near the cursor, some mid-range,
   some past the 2^32 wheel horizon (overflow heap). *)
let eq_time_gen =
  QCheck.Gen.(
    frequency
      [
        (6, int_bound 100);
        (3, int_bound 1_000_000);
        (1, map (fun t -> (1 lsl 32) + t) (int_bound 1_000));
      ])

let eq_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Add t) eq_time_gen);
        (3, map (fun i -> Cancel i) (int_bound 50));
        (3, return Pop);
        (2, map (fun t -> Pop_before t) eq_time_gen);
        (1, map (fun t -> Drain_before t) eq_time_gen);
      ])

let eq_op_print = function
  | Add t -> Printf.sprintf "Add %d" t
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Pop -> "Pop"
  | Pop_before t -> Printf.sprintf "Pop_before %d" t
  | Drain_before t -> Printf.sprintf "Drain_before %d" t

let eq_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map eq_op_print ops))
    QCheck.Gen.(list_size (int_bound 200) eq_op_gen)

let prop_eq_model (name, backend) =
  QCheck.Test.make
    ~name:(Printf.sprintf "event_queue (%s) matches sorted-list model" name)
    ~count:300 eq_ops_arb (fun ops ->
      let q = Event_queue.create ~backend () in
      (* The model: live entries as (time, id) kept in pop order; [handles]
         maps id -> real handle for cancel targeting. *)
      let model = ref [] and handles = ref [||] and next_id = ref 0 in
      let model_pop ?horizon () =
        match
          List.sort
            (fun (t1, i1) (t2, i2) -> compare (t1, i1) (t2, i2))
            !model
        with
        | [] -> None
        | (t, i) :: _ ->
            if match horizon with Some h -> t > h | None -> false then None
            else begin
              model := List.filter (fun (_, j) -> j <> i) !model;
              Some (t, i)
            end
      in
      List.for_all
        (fun op ->
          let ok =
            match op with
            | Add time ->
                let id = !next_id in
                incr next_id;
                let h = Event_queue.add q ~time id in
                handles := Array.append !handles [| h |];
                model := (time, id) :: !model;
                true
            | Cancel k ->
                if Array.length !handles = 0 then true
                else begin
                  let i = k mod Array.length !handles in
                  Event_queue.cancel q !handles.(i);
                  (* Cancelling a popped or already-cancelled id is a
                     no-op in both the queue and the model. *)
                  model := List.filter (fun (_, j) -> j <> i) !model;
                  true
                end
            | Pop -> Event_queue.pop q = model_pop ()
            | Pop_before h ->
                Event_queue.pop_if_before q ~horizon:h
                = model_pop ~horizon:h ()
            | Drain_before h ->
                let got = ref [] in
                Event_queue.drain_before q ~horizon:h (fun t id ->
                    got := (t, id) :: !got);
                let rec expect acc =
                  match model_pop ~horizon:h () with
                  | Some e -> expect (e :: acc)
                  | None -> List.rev acc
                in
                List.rev !got = expect []
          in
          ok && Event_queue.length q = List.length !model)
        ops)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~at:200 (fun _ -> log := "b" :: !log));
  ignore (Sim.schedule sim ~at:100 (fun _ -> log := "a" :: !log));
  Sim.run_until sim 1_000;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log);
  check_int "clock at horizon" 1_000 (Sim.now sim)

let test_sim_horizon_excludes_later () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule sim ~at:500 (fun _ -> fired := true));
  Sim.run_until sim 499;
  check_bool "not fired" false !fired;
  check_int "pending" 1 (Sim.pending sim);
  Sim.run_until sim 500;
  check_bool "fired" true !fired

let test_sim_reentrant_schedule () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick sim =
    incr count;
    if !count < 5 then ignore (Sim.schedule_after sim ~delay:10 tick)
  in
  ignore (Sim.schedule sim ~at:0 tick);
  Sim.run_until sim 1_000;
  check_int "chained events" 5 !count

let test_sim_schedule_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:100 (fun _ -> ()));
  Sim.run_until sim 100;
  check_bool "raises" true
    (try
       ignore (Sim.schedule sim ~at:50 (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~at:10 (fun _ -> fired := true) in
  Sim.cancel sim h;
  Sim.run_until sim 100;
  check_bool "cancelled" false !fired

let test_sim_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:7 (fun _ -> ()));
  check_bool "step" true (Sim.step sim);
  check_int "clock moved" 7 (Sim.now sim);
  check_bool "exhausted" false (Sim.step sim)

(* ------------------------------------------------------------------ *)
(* Batched dispatch: [run_until]'s batch drain must be observably
   identical to one-at-a-time [step] — callback order, the clock each
   callback sees, and the executed counters — including reentrant
   schedules into the current batch and cancels aimed at events later
   in the same batch. *)

type batch_op =
  | Fire (* a tagged event that only logs *)
  | Boxed (* a closure event that only logs *)
  | Spawn_same (* schedules a tagged event at its own timestamp *)
  | Spawn_later of int (* schedules a tagged event [d] later *)
  | Cancel_next (* cancels the earliest still-pending Fire handle *)

let batch_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, return Fire);
        (2, return Boxed);
        (2, return Spawn_same);
        (2, map (fun d -> Spawn_later (d + 1)) (int_bound 40));
        (2, return Cancel_next);
      ])

(* Small time range so many events share a timestamp (deep batches). *)
let batch_scenario_gen =
  QCheck.Gen.(
    list_size (int_bound 60) (pair (int_bound 20) batch_op_gen))

let batch_op_print (t, op) =
  Printf.sprintf "(%d, %s)" t
    (match op with
    | Fire -> "Fire"
    | Boxed -> "Boxed"
    | Spawn_same -> "Spawn_same"
    | Spawn_later d -> Printf.sprintf "Spawn_later %d" d
    | Cancel_next -> "Cancel_next")

let batch_scenario_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map batch_op_print ops))
    batch_scenario_gen

(* Interpret a scenario on a fresh sim. [drive] consumes the sim after
   setup; the observable record is the (clock, id) log plus the local
   executed counter. Tagged log events carry their scenario index in
   [a] so the two runs can be compared id-by-id. *)
let run_batch_scenario ~backend ~drive ops =
  let sim = Sim.create ~backend () in
  let log = ref [] in
  let fire_tag =
    Sim.register_handler sim (fun a _ -> log := (Sim.now sim, a) :: !log)
  in
  (* Pending Fire handles, oldest first, for Cancel_next to target. *)
  let pending = Queue.create () in
  List.iteri
    (fun i (time, op) ->
      match op with
      | Fire ->
          Queue.push
            (Sim.schedule_tagged sim ~at:time ~tag:fire_tag ~a:i ~b:0)
            pending
      | Boxed ->
          ignore
            (Sim.schedule sim ~at:time (fun sim ->
                 log := (Sim.now sim, 10_000 + i) :: !log))
      | Spawn_same ->
          ignore
            (Sim.schedule sim ~at:time (fun sim ->
                 ignore
                   (Sim.schedule_tagged sim ~at:(Sim.now sim) ~tag:fire_tag
                      ~a:(20_000 + i) ~b:0)))
      | Spawn_later d ->
          ignore
            (Sim.schedule sim ~at:time (fun sim ->
                 ignore
                   (Sim.schedule_tagged_after sim ~delay:d ~tag:fire_tag
                      ~a:(30_000 + i) ~b:0)))
      | Cancel_next ->
          ignore
            (Sim.schedule sim ~at:time (fun sim ->
                 match Queue.take_opt pending with
                 | Some h -> Sim.cancel sim h
                 | None -> ())))
    ops;
  drive sim;
  (List.rev !log, Sim.events_executed sim)

let drive_run_until sim = Sim.run_until sim 1_000

let drive_step sim =
  while Sim.step sim do
    ()
  done

let prop_batch_vs_step (name, backend) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "run_until batches = step-at-a-time (%s)" name)
    ~count:500 batch_scenario_arb (fun ops ->
      let g0 = Sim.total_events_executed () in
      let batched = run_batch_scenario ~backend ~drive:drive_run_until ops in
      let stepped = run_batch_scenario ~backend ~drive:drive_step ops in
      let g1 = Sim.total_events_executed () in
      (* Satellite invariant: the batched global-counter flush loses
         nothing — the process-wide aggregate advances by exactly the
         two runs' local counts. *)
      batched = stepped && g1 - g0 = snd batched + snd stepped)

(* The tagged scheduling path must stay allocation-free end to end
   through [Sim.run_until]: a warm self-rescheduling handler churns the
   queue with no minor-heap traffic. Budget is per horizon-window, not
   per event. *)
let test_sim_tagged_zero_alloc () =
  let sim = Sim.create () in
  let count = ref 0 in
  let tag = ref (-1) in
  let rounds = 100 and per_round = 256 in
  tag :=
    Sim.register_handler sim (fun a _ ->
        incr count;
        if a > 1 then
          ignore (Sim.schedule_tagged_after sim ~delay:7 ~tag:!tag ~a:(a - 1) ~b:0));
  let churn () =
    for _ = 1 to rounds do
      ignore
        (Sim.schedule_tagged_after sim ~delay:1 ~tag:!tag ~a:per_round ~b:0);
      Sim.run_until sim (Sim.now sim + (7 * per_round) + 10)
    done
  in
  churn ();
  let w0 = Gc.minor_words () in
  churn ();
  let per_event =
    (Gc.minor_words () -. w0) /. float_of_int (rounds * per_round)
  in
  check_int "fired" (2 * rounds * per_round) !count;
  check_bool
    (Printf.sprintf "tagged run_until allocation-free (%.3f words/event)"
       per_event)
    true (per_event < 0.5)

let test_sim_deterministic_replay () =
  let run () =
    let sim = Sim.create ~seed:99 () in
    let r = Rng.split (Sim.rng sim) in
    let acc = ref [] in
    for _ = 1 to 10 do
      ignore
        (Sim.schedule_after sim ~delay:(Rng.int r 1_000) (fun sim ->
             acc := Sim.now sim :: !acc))
    done;
    Sim.run_until sim 10_000;
    !acc
  in
  Alcotest.(check (list int)) "replay identical" (run ()) (run ())

let suite =
  [
    ( "engine.time",
      [
        Alcotest.test_case "unit conversions" `Quick test_time_units;
        Alcotest.test_case "cycles to ns" `Quick test_time_of_cycles;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "engine.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "bad bound" `Quick test_rng_int_rejects_bad_bound;
        Alcotest.test_case "shuffle is a permutation" `Quick
          test_rng_shuffle_permutation;
      ] );
    ( "engine.dist",
      [
        Alcotest.test_case "constant" `Quick test_dist_constant;
        Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
        Alcotest.test_case "uniform mean" `Quick test_dist_uniform_mean;
        Alcotest.test_case "lognormal quantile fit (Silo)" `Quick
          test_dist_lognormal_quantiles;
        Alcotest.test_case "bimodal" `Quick test_dist_bimodal;
        Alcotest.test_case "mixture" `Quick test_dist_mixture;
        Alcotest.test_case "shifted" `Quick test_dist_shifted;
        Alcotest.test_case "pareto" `Quick test_dist_pareto_positive;
        Alcotest.test_case "invalid args" `Quick test_dist_invalid_args;
      ] );
    ( "engine.event_queue",
      [
        Alcotest.test_case "time order" `Quick test_eq_order;
        Alcotest.test_case "FIFO tie-break" `Quick test_eq_fifo_ties;
        Alcotest.test_case "cancel" `Quick test_eq_cancel;
        Alcotest.test_case "cancel idempotent" `Quick test_eq_cancel_idempotent;
        Alcotest.test_case "cancel after pop" `Quick test_eq_cancel_after_pop;
        Alcotest.test_case "peek" `Quick test_eq_peek;
        Alcotest.test_case "pop_if_before" `Quick test_eq_pop_if_before;
        Alcotest.test_case "pop_if_before skips cancelled" `Quick
          test_eq_pop_if_before_skips_cancelled;
        Alcotest.test_case "drain_before" `Quick test_eq_drain_before;
        Alcotest.test_case "drain_before reentrant" `Quick
          test_eq_drain_before_reentrant;
        Alcotest.test_case "stale handle after recycling" `Quick
          test_eq_stale_handle_recycled;
        Alcotest.test_case "multi-level order (wheel)" `Quick
          (test_eq_multi_level Event_queue.Wheel);
        Alcotest.test_case "multi-level order (heap)" `Quick
          (test_eq_multi_level Event_queue.Heap);
        Alcotest.test_case "zero-alloc steady state" `Quick
          test_eq_zero_alloc;
        Alcotest.test_case "covering-slot drain on cursor jump (wheel)"
          `Quick
          (test_eq_covering_slot_drain Event_queue.Wheel);
        Alcotest.test_case "covering-slot drain on cursor jump (heap)"
          `Quick
          (test_eq_covering_slot_drain Event_queue.Heap);
        Alcotest.test_case "demoted front keeps FIFO (wheel)" `Quick
          (test_eq_demoted_front_fifo Event_queue.Wheel);
        Alcotest.test_case "demoted front keeps FIFO (heap)" `Quick
          (test_eq_demoted_front_fifo Event_queue.Heap);
        QCheck_alcotest.to_alcotest prop_eq_sorted;
      ]
      @ List.map
          (fun b -> QCheck_alcotest.to_alcotest (prop_eq_model b))
          eq_backends );
    ( "engine.sim",
      [
        Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
        Alcotest.test_case "horizon" `Quick test_sim_horizon_excludes_later;
        Alcotest.test_case "reentrant schedule" `Quick test_sim_reentrant_schedule;
        Alcotest.test_case "past rejected" `Quick test_sim_schedule_past_rejected;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "step" `Quick test_sim_step;
        Alcotest.test_case "tagged run_until zero-alloc" `Quick
          test_sim_tagged_zero_alloc;
        Alcotest.test_case "deterministic replay" `Quick
          test_sim_deterministic_replay;
      ]
      @ List.map
          (fun b -> QCheck_alcotest.to_alcotest (prop_batch_vs_step b))
          eq_backends );
  ]
