let () =
  Alcotest.run "vessel"
    (List.concat
       [ Test_engine.suite; Test_pool.suite; Test_stats.suite; Test_hw.suite; Test_mem.suite; Test_uprocess.suite; Test_sched.suite; Test_workloads.suite; Test_experiments.suite; Test_invariants.suite; Test_domains.suite; Test_integration.suite; Test_obs.suite; Test_attrib.suite; Test_check.suite; Test_cluster.suite; Test_gaps.suite ])
