(* Tests for the measurement substrate: histogram, summary, series,
   cycle accounting and table rendering. *)

open Vessel_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_empty () =
  let h = Histogram.create () in
  check_int "count" 0 (Histogram.count h);
  check_int "p99" 0 (Histogram.percentile h 99.);
  Alcotest.(check (float 0.)) "mean" 0. (Histogram.mean h)

let test_hist_empty_percentile_edges () =
  let h = Histogram.create () in
  (* Every in-range p on an empty histogram reports 0 rather than
     raising — callers print percentiles unconditionally. *)
  check_int "p50 empty" 0 (Histogram.percentile h 50.);
  check_int "p100 empty" 0 (Histogram.percentile h 100.);
  Alcotest.check_raises "p0 rejected"
    (Invalid_argument "Histogram.percentile: p must be in (0, 100]")
    (fun () -> ignore (Histogram.percentile h 0.));
  Alcotest.check_raises "p>100 rejected"
    (Invalid_argument "Histogram.percentile: p must be in (0, 100]")
    (fun () -> ignore (Histogram.percentile h 100.5))

let test_hist_single_sample () =
  let h = Histogram.create ~precision:6 () in
  Histogram.record h 7;
  (* One sample below 2^precision: every percentile is that sample. *)
  List.iter
    (fun p -> check_int (Printf.sprintf "p%.1f" p) 7 (Histogram.percentile h p))
    [ 0.001; 1.; 50.; 99.; 100. ];
  check_int "min" 7 (Histogram.min h);
  check_int "max" 7 (Histogram.max h)

let test_hist_all_in_top_bucket () =
  (* Samples at max_int all land in the last magnitude row. The bucket
     floor undershoots by at most one sub-bucket width (1/64 relative)
     and the max_v clamp keeps the report from overshooting. *)
  let h = Histogram.create ~precision:6 () in
  for _ = 1 to 5 do
    Histogram.record h Stdlib.max_int
  done;
  check_int "count" 5 (Histogram.count h);
  let p50 = Histogram.percentile h 50. in
  let p100 = Histogram.percentile h 100. in
  check_bool "p50 <= max_int" true (p50 <= Stdlib.max_int);
  check_bool "p50 within 1/64 of max_int" true
    (float_of_int p50 >= float_of_int Stdlib.max_int *. 63. /. 64.);
  check_int "p100 = p50 (single occupied bucket)" p50 p100;
  check_int "max exact" Stdlib.max_int (Histogram.max h)

let test_hist_exact_small () =
  (* Values below 2^precision are stored exactly. *)
  let h = Histogram.create ~precision:6 () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check_int "p50 exact" 3 (Histogram.percentile h 50.);
  check_int "min" 1 (Histogram.min h);
  check_int "max" 5 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "mean exact" 3. (Histogram.mean h)

let test_hist_relative_error () =
  let h = Histogram.create ~precision:6 () in
  let v = 1_234_567 in
  Histogram.record h v;
  let p = Histogram.percentile h 50. in
  let err = Float.abs (float_of_int (p - v)) /. float_of_int v in
  check_bool "within 2/64 relative error" true (err < 2. /. 64.)

let test_hist_percentile_ordering () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.record h i
  done;
  let p50 = Histogram.percentile h 50. in
  let p90 = Histogram.percentile h 90. in
  let p999 = Histogram.percentile h 99.9 in
  check_bool "p50<=p90" true (p50 <= p90);
  check_bool "p90<=p999" true (p90 <= p999);
  check_bool "p50 near 5000" true (abs (p50 - 5_000) < 200);
  check_bool "p999 near 9990" true (abs (p999 - 9_990) < 300)

let test_hist_record_n () =
  let h = Histogram.create () in
  Histogram.record_n h 10 ~n:1000;
  check_int "count" 1000 (Histogram.count h);
  check_int "p99" 10 (Histogram.percentile h 99.)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10;
  Histogram.record b 1_000;
  Histogram.merge ~into:a b;
  check_int "count" 2 (Histogram.count a);
  check_int "min" 10 (Histogram.min a);
  check_bool "max >= 1000*63/64" true (Histogram.max a >= 984)

let test_hist_clear () =
  let h = Histogram.create () in
  Histogram.record h 5;
  Histogram.clear h;
  check_int "count" 0 (Histogram.count h);
  check_int "max" 0 (Histogram.max h)

let test_hist_negative_rejected () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Histogram.record: negative value") (fun () ->
      Histogram.record h (-1))

let prop_hist_percentile_bounded =
  QCheck.Test.make ~name:"histogram percentile within value range" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 5_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let lo = List.fold_left min max_int xs in
      let hi = List.fold_left max 0 xs in
      List.for_all
        (fun p ->
          let v = Histogram.percentile h p in
          (* The bucket representative can undershoot by one bucket width
             (<= 1/64 relative) but never overshoots max. *)
          v <= hi && float_of_int v >= float_of_int lo *. 0.96 -. 1.)
        [ 1.; 50.; 90.; 99.; 99.9; 100. ])

let prop_hist_mean_exact =
  QCheck.Test.make ~name:"histogram mean is exact" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_bound 1_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let expect =
        List.fold_left (fun a x -> a +. float_of_int x) 0. xs
        /. float_of_int (List.length xs)
      in
      Float.abs (Histogram.mean h -. expect) < 1e-6 *. (1. +. expect))

(* Exhaustive check of the branch-free bucketing against the loop it
   replaced. [Bits.msb] must agree with a one-bit-at-a-time scan on
   every representable magnitude, and the histogram's bucket floor
   (observable through percentile of a single recorded value) must
   match the reference index formula computed with the naive msb — at
   every sub-bucket lower bound of every magnitude row, and one on
   either side of it. *)

let msb_naive v =
  let k = ref 0 and x = ref v in
  while !x > 1 do
    incr k;
    x := !x lsr 1
  done;
  !k

let test_hist_index_exhaustive () =
  let precision = 6 in
  let sub = 1 lsl precision in
  (* Reference bucket floor: the value the old loop-based index mapped
     [v] to (identity below [sub], top [precision+1] bits kept above). *)
  let ref_floor v =
    if v < sub then v
    else begin
      let m = msb_naive v - precision in
      (v lsr m) lsl m
    end
  in
  let checked = ref 0 in
  let check_v v =
    if v >= 0 then begin
      let h = Histogram.create ~precision () in
      Histogram.record h v;
      check_int (Printf.sprintf "bucket floor of %d" v) (ref_floor v)
        (Histogram.percentile h 50.);
      incr checked
    end
  in
  (* Magnitudes 0..61 cover every positive OCaml int (max_int = 2^62-1);
     small values below one full row are exact. *)
  for v = 0 to (2 * sub) + 1 do
    check_v v
  done;
  for k = precision to 61 do
    check_int (Printf.sprintf "msb of 2^%d" k) k (msb_naive (1 lsl k));
    check_int
      (Printf.sprintf "Bits.msb of 2^%d" k)
      k
      (Vessel_engine.Bits.msb (1 lsl k));
    for col = 0 to sub - 1 do
      (* Sub-bucket lower bound in magnitude row [k - precision]. *)
      let v = (sub + col) lsl (k - precision) in
      check_v (v - 1);
      check_v v;
      check_v (v + 1)
    done
  done;
  check_v max_int;
  check_v (max_int - 1);
  (* Bits.msb against the naive scan on both sides of every power. *)
  for k = 0 to 61 do
    List.iter
      (fun v ->
        if v > 0 then
          check_int
            (Printf.sprintf "Bits.msb %d" v)
            (msb_naive v)
            (Vessel_engine.Bits.msb v))
      [ (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1 ]
  done;
  check_bool "covered all rows" true
    (!checked > (61 - precision + 1) * sub * 3)

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (n-1)" 2.13809 (Summary.stddev s);
  Alcotest.(check (float 0.)) "min" 2. (Summary.min s);
  Alcotest.(check (float 0.)) "max" 9. (Summary.max s);
  Alcotest.(check (float 0.)) "total" 40. (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check (float 0.)) "mean" 0. (Summary.mean s);
  Alcotest.(check (float 0.)) "variance" 0. (Summary.variance s);
  check_bool "min nan" true (Float.is_nan (Summary.min s))

let test_summary_clear () =
  let s = Summary.create () in
  Summary.add s 3.;
  Summary.clear s;
  check_int "count" 0 (Summary.count s)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_order_enforced () =
  let s = Series.create () in
  Series.add s ~at:10 1.;
  check_bool "unordered rejected" true
    (try
       Series.add s ~at:5 2.;
       false
     with Invalid_argument _ -> true)

let test_series_mean_between () =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s ~at:t v)
    [ (0, 1.); (10, 2.); (20, 3.); (30, 4.) ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Series.mean s);
  let sub = Series.between s ~lo:10 ~hi:30 in
  check_int "window length" 2 (Series.length sub);
  Alcotest.(check (float 1e-9)) "window mean" 2.5 (Series.mean sub)

let test_series_last_and_rate () =
  let s = Series.create () in
  Alcotest.(check bool) "empty last" true (Series.last s = None);
  Series.add s ~at:5 9.;
  Alcotest.(check bool) "last" true (Series.last s = Some (5, 9.));
  Alcotest.(check (float 1e-6)) "rate" 2_000_000.
    (Series.rate_per_s ~count:2_000 ~window:1_000_000)

(* ------------------------------------------------------------------ *)
(* Cycle_account *)

let test_cycles_basic () =
  let c = Cycle_account.create () in
  Cycle_account.charge c (App 1) 100;
  Cycle_account.charge c (App 1) 50;
  Cycle_account.charge c (App 2) 30;
  Cycle_account.charge c Runtime 20;
  Cycle_account.charge c Kernel 10;
  Cycle_account.charge c Idle 40;
  check_int "app1" 150 (Cycle_account.total c (App 1));
  check_int "app total" 180 (Cycle_account.app_total c);
  check_int "grand" 250 (Cycle_account.grand_total c);
  Alcotest.(check (list int)) "ids" [ 1; 2 ] (Cycle_account.app_ids c);
  Alcotest.(check (float 1e-9)) "cores worth" 0.5
    (Cycle_account.cores_worth c (App 1) ~wall:300)

let test_cycles_merge () =
  let a = Cycle_account.create () and b = Cycle_account.create () in
  Cycle_account.charge a Kernel 5;
  Cycle_account.charge b Kernel 7;
  Cycle_account.charge b (App 3) 2;
  Cycle_account.merge ~into:a b;
  check_int "kernel" 12 (Cycle_account.total a Kernel);
  check_int "app3" 2 (Cycle_account.total a (App 3))

let test_cycles_negative_rejected () =
  let c = Cycle_account.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Cycle_account.charge: negative duration") (fun () ->
      Cycle_account.charge c Idle (-1))

(* ------------------------------------------------------------------ *)
(* Timeline *)

let test_timeline_render () =
  let tl = Timeline.create ~cores:2 in
  Timeline.record tl ~core:0 ~from:0 ~till:50 ~label:"alpha";
  Timeline.record tl ~core:0 ~from:50 ~till:100 ~label:"beta";
  Timeline.record tl ~core:1 ~from:25 ~till:75 ~label:"alpha";
  let s = Timeline.render tl ~from:0 ~till:100 ~width:10 () in
  let lines = String.split_on_char '\n' s in
  let row n = List.nth lines n in
  check_bool "core0 alpha then beta" true
    (let r = row 0 in
     String.sub r 9 10 = "aaaaabbbbb");
  check_bool "core1 idle-alpha-idle" true
    (let r = row 1 in
     (* buckets 0-1 idle (0-20), 3-6 alpha, 8-9 idle *)
     r.[9] = '.' && r.[13] = 'a' && r.[18] = '.');
  Alcotest.(check (list string)) "labels in first-appearance order"
    [ "alpha"; "beta" ] (Timeline.labels tl)

let test_timeline_dominant_label () =
  (* A bucket split between two labels shows the bigger occupant. *)
  let tl = Timeline.create ~cores:1 in
  Timeline.record tl ~core:0 ~from:0 ~till:30 ~label:"x";
  Timeline.record tl ~core:0 ~from:30 ~till:100 ~label:"y";
  let s = Timeline.render tl ~from:0 ~till:100 ~width:1 () in
  check_bool "y dominates the single bucket" true
    (String.contains (List.hd (String.split_on_char '\n' s)) 'y')

let test_timeline_validation () =
  let tl = Timeline.create ~cores:1 in
  (* Reversed segments ignored, bad core rejected. *)
  Timeline.record tl ~core:0 ~from:10 ~till:5 ~label:"z";
  check_bool "reversed ignored" true (Timeline.labels tl = []);
  check_bool "bad core" true
    (try Timeline.record tl ~core:5 ~from:0 ~till:1 ~label:"z"; false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check_bool "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  check_int "rows" 2 (Table.row_count t);
  (* All lines align: same rendered width for the first two columns. *)
  let lines = String.split_on_char '\n' s in
  check_int "line count" 4 (List.length lines)

let test_table_rowf_and_cells () =
  let t = Table.create ~columns:[ "a"; "b"; "c" ] in
  Table.add_rowf t "%s|%s|%s" (Table.cell_f 1.2345) (Table.cell_us 1_500)
    (Table.cell_pct 0.42);
  Alcotest.(check bool) "cells formatted" true
    (Table.render t |> fun s ->
     let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "1.234" && has "1.500" && has "42.0%")

let test_table_arity_enforced () =
  let t = Table.create ~columns:[ "x" ] in
  check_bool "arity" true
    (try
       Table.add_row t [ "a"; "b" ];
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "stats.histogram",
      [
        Alcotest.test_case "empty" `Quick test_hist_empty;
        Alcotest.test_case "empty percentile edges" `Quick
          test_hist_empty_percentile_edges;
        Alcotest.test_case "single sample" `Quick test_hist_single_sample;
        Alcotest.test_case "all in top bucket" `Quick test_hist_all_in_top_bucket;
        Alcotest.test_case "exact small values" `Quick test_hist_exact_small;
        Alcotest.test_case "bounded relative error" `Quick
          test_hist_relative_error;
        Alcotest.test_case "percentile ordering" `Quick
          test_hist_percentile_ordering;
        Alcotest.test_case "record_n" `Quick test_hist_record_n;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "clear" `Quick test_hist_clear;
        Alcotest.test_case "negative rejected" `Quick test_hist_negative_rejected;
        Alcotest.test_case "index exhaustive vs naive msb" `Quick
          test_hist_index_exhaustive;
        QCheck_alcotest.to_alcotest prop_hist_percentile_bounded;
        QCheck_alcotest.to_alcotest prop_hist_mean_exact;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "basic" `Quick test_summary_basic;
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "clear" `Quick test_summary_clear;
      ] );
    ( "stats.series",
      [
        Alcotest.test_case "order enforced" `Quick test_series_order_enforced;
        Alcotest.test_case "mean/between" `Quick test_series_mean_between;
        Alcotest.test_case "last/rate" `Quick test_series_last_and_rate;
      ] );
    ( "stats.cycle_account",
      [
        Alcotest.test_case "basic" `Quick test_cycles_basic;
        Alcotest.test_case "merge" `Quick test_cycles_merge;
        Alcotest.test_case "negative rejected" `Quick
          test_cycles_negative_rejected;
      ] );
    ( "stats.timeline",
      [
        Alcotest.test_case "render" `Quick test_timeline_render;
        Alcotest.test_case "dominant label" `Quick test_timeline_dominant_label;
        Alcotest.test_case "validation" `Quick test_timeline_validation;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "rowf/cells" `Quick test_table_rowf_and_cells;
        Alcotest.test_case "arity" `Quick test_table_arity_enforced;
      ] );
  ]
