(* Focused integration tests for cross-module behaviours that the
   per-module suites don't cover: syscall proxying under different
   schedulers, preemption racing a switch, mid-run load changes, and the
   dlopen path driven through a live domain. *)

module Hw = Vessel_hw
module Mem = Vessel_mem
module U = Vessel_uprocess
module S = Vessel_sched
module W = Vessel_workloads
module Sim = Vessel_engine.Sim
module Stats = Vessel_stats
module Obs = Vessel_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Section 5.2.4: under VESSEL, syscalls are intercepted and served by the
   trusted runtime (runtime cycles); under a kernel-process baseline the
   same workload's syscall time lands in the kernel. *)
let syscall_time ~mk =
  let sim = Sim.create ~seed:3 () in
  let machine = Hw.Machine.create ~cores:1 sim in
  let sys = mk machine in
  sys.S.Sched_intf.add_app
    { S.Sched_intf.id = 1; name = "io-app"; class_ = S.Sched_intf.Latency_critical };
  let remaining = ref 100 in
  ignore
    (sys.S.Sched_intf.add_worker ~app_id:1 ~name:"w" ~step:(fun ~now:_ ->
         if !remaining = 0 then U.Uthread.Park
         else begin
           decr remaining;
           U.Uthread.Syscall { ns = 500; on_complete = None }
         end));
  sys.S.Sched_intf.start ();
  Sim.run_until sim 1_000_000;
  sys.S.Sched_intf.stop ();
  let acct = Hw.Machine.total_account machine in
  ( Stats.Cycle_account.total acct Stats.Cycle_account.Runtime,
    Stats.Cycle_account.total acct Stats.Cycle_account.Kernel )

let test_syscall_redirection () =
  let rt_v, k_v =
    syscall_time ~mk:(fun machine -> S.Vessel.system (S.Vessel.make ~machine ()))
  in
  let rt_c, k_c =
    syscall_time ~mk:(fun machine ->
        S.Baseline.system (S.Baseline.make S.Baseline.caladan ~machine))
  in
  (* 100 x 500ns of syscall time: runtime-served under VESSEL... *)
  check_bool "vessel: syscalls in runtime" true (rt_v >= 50_000);
  check_int "vessel: no kernel time" 0 k_v;
  (* ...kernel-served under Caladan. *)
  check_bool "caladan: syscalls in kernel" true (k_c >= 50_000);
  check_bool "caladan: runtime below syscall total" true (rt_c < 50_000)

(* Preempting a core mid-switch defers until the switch lands, then
   fires: no lost preemption, no double execution. *)
let test_preempt_during_switch () =
  let sim = Sim.create ~seed:4 () in
  let machine = Hw.Machine.create ~cores:1 sim in
  let served = ref [] in
  let mk_th tid =
    let done_ = ref false in
    U.Uthread.create ~tid ~app:tid ~uproc:tid ~name:(Printf.sprintf "t%d" tid)
      ~priority:U.Uthread.Latency_critical
      ~step:(fun ~now:_ ->
        if !done_ then U.Uthread.Park
        else begin
          done_ := true;
          U.Uthread.Compute
            { ns = 10_000; on_complete = Some (fun _ -> served := tid :: !served) }
        end)
      ()
  in
  let t1 = mk_th 1 and t2 = mk_th 2 in
  let queue = ref [ t1; t2 ] in
  let hooks =
    {
      (U.Exec.default_hooks ()) with
      U.Exec.pick_next =
        (fun ~core:_ ->
          match !queue with [] -> None | x :: r -> queue := r; Some x);
      on_preempted = (fun ~core:_ th -> queue := !queue @ [ th ]);
      switch_overhead = (fun ~core:_ ~kind:_ ~next:_ -> 1_000);
    }
  in
  let exec = U.Exec.create machine hooks in
  U.Exec.start exec ~core:0;
  (* At t=500 the core is still in its initial 1000ns switch: the preempt
     must defer, then split t1 immediately after it starts. *)
  ignore (Sim.schedule sim ~at:500 (fun _ -> U.Exec.preempt exec ~core:0 ~overhead:0));
  Sim.run_until sim 100_000;
  U.Exec.stop exec ~core:0;
  (* Both threads completed exactly one segment each. *)
  check_int "t1 one completion" 1
    (List.length (List.filter (fun x -> x = 1) !served));
  check_int "t2 one completion" 1
    (List.length (List.filter (fun x -> x = 2) !served));
  check_int "t1 charged its full segment" 10_000 (U.Uthread.total_app_ns t1)

(* Changing the offered rate mid-run takes effect: the epoch mechanism
   kills the stale arrival chain. *)
let test_openloop_rate_change () =
  let sim = Sim.create ~seed:5 () in
  let machine = Hw.Machine.create ~cores:2 sim in
  let v = S.Vessel.make ~machine () in
  let sys = S.Vessel.system v in
  let gen = W.Memcached.make ~sim ~sys ~app_id:1 ~workers:2 () in
  sys.S.Sched_intf.start ();
  W.Openloop.start gen ~rate_rps:100_000. ~until:100_000_000;
  Sim.run_until sim 50_000_000;
  let at_half = W.Openloop.offered gen in
  (* 10x the rate for the second half. *)
  W.Openloop.start gen ~rate_rps:1_000_000. ~until:100_000_000;
  Sim.run_until sim 100_000_000;
  sys.S.Sched_intf.stop ();
  let second_half = W.Openloop.offered gen - at_half in
  check_bool
    (Printf.sprintf "first half ~5k (%d), second ~50k (%d)" at_half second_half)
    true
    (abs (at_half - 5_000) < 500 && abs (second_half - 50_000) < 2_000)

(* dlopen through a live domain: a clean library becomes executable in
   the uProcess's text region; a dirty one is rejected and nothing about
   the running app changes. *)
let test_dlopen_in_live_domain () =
  let sim = Sim.create ~seed:6 () in
  let machine = Hw.Machine.create ~cores:1 sim in
  let mgr = U.Manager.create ~slots:2 ~machine () in
  let rng = Sim.rng sim in
  let image = Mem.Image.make ~name:"app" ~text_size:8192 rng in
  let u = Result.get_ok (U.Manager.create_uprocess mgr ~name:"app" ~image ()) in
  let th =
    U.Manager.spawn_thread mgr ~uproc:u ~app:0
      ~priority:U.Uthread.Latency_critical ~name:"w"
      ~step:(fun ~now:_ -> U.Uthread.Compute { ns = 1_000; on_complete = None })
      ~core:0
  in
  U.Manager.start mgr;
  Sim.run_until sim 10_000;
  let loader = Option.get (U.Manager.loader mgr ~slot:0) in
  (* Clean dlopen mid-run. *)
  (match Mem.Loader.dlopen loader (Mem.Image.library ~name:"libplug.so" ~text_size:4096 rng) with
  | Ok base ->
      check_bool "plugin executable" true
        (Mem.Smas.fetch (U.Manager.smas mgr) ~addr:base ~len:16 = Ok ())
  | Error e -> Alcotest.failf "dlopen failed: %a" Mem.Loader.pp_error e);
  (* Dirty dlopen rejected; the app keeps running. *)
  (match
     Mem.Loader.dlopen loader
       (Mem.Image.make ~name:"libevil.so" ~text_size:4096 ~embed_wrpkru_at:[ 7 ] rng)
   with
  | Error (Mem.Loader.Rejected _) -> ()
  | _ -> Alcotest.fail "dirty dlopen must be rejected");
  Sim.run_until sim 100_000;
  U.Manager.stop mgr;
  check_bool "app unharmed" true (U.Uthread.total_app_ns th > 50_000)

(* The Figure-6 stages appear in the probe stream in the documented
   order: senduipi, handler entry in privileged mode, dispatch with the
   PKRU flip. *)
let test_fig6_trace () =
  let ring = Obs.Ring.create () in
  Obs.Probe.with_sink (Obs.Ring.sink ring) @@ fun () ->
  let sim = Sim.create ~seed:9 () in
  let machine = Hw.Machine.create ~cores:1 sim in
  let v = S.Vessel.make ~machine () in
  let sys = S.Vessel.system v in
  let lc = W.Memcached.make ~sim ~sys ~app_id:1 ~workers:1 () in
  let _lp = W.Linpack.make ~sys ~app_id:2 ~workers:1 () in
  sys.S.Sched_intf.start ();
  (* One request while the BE hog owns the core: forces a Uintr path. *)
  ignore
    (Sim.schedule sim ~at:50_000 (fun _ ->
         W.Openloop.start lc ~rate_rps:1_000_000. ~until:60_000));
  Sim.run_until sim 200_000;
  sys.S.Sched_intf.stop ();
  let ts_of = List.map Obs.Event.ts in
  let sends = ts_of (Obs.Ring.find_all ring ~name:Obs.Tag.uintr_send) in
  let handles = ts_of (Obs.Ring.find_all ring ~name:Obs.Tag.uintr_handle) in
  let dispatches = ts_of (Obs.Ring.find_all ring ~name:Obs.Tag.dispatch) in
  check_bool "send recorded" true (sends <> []);
  check_bool "handle recorded" true (handles <> []);
  check_bool "dispatch recorded" true (dispatches <> []);
  (* Delivery follows the send by the Uintr latency; a dispatch follows. *)
  let s0 = List.hd sends in
  let h0 = List.find (fun at -> at >= s0) handles in
  check_int "delivery latency"
    Hw.Cost_model.default.Hw.Cost_model.uintr_delivery (h0 - s0);
  check_bool "a dispatch follows the handler" true
    (List.exists (fun at -> at >= h0) dispatches)

(* The 13-uProcess limit end to end through a live scheduler. *)
let test_thirteen_uprocesses_live () =
  let sim = Sim.create ~seed:8 () in
  let machine = Hw.Machine.create ~cores:2 sim in
  let v = S.Vessel.make ~machine () in
  let sys = S.Vessel.system v in
  let gens =
    List.init 13 (fun i ->
        W.Synth.make ~sim ~sys ~app_id:(i + 1)
          ~name:(Printf.sprintf "app%d" (i + 1))
          ~class_:S.Sched_intf.Latency_critical ~workers:1
          ~service:(Vessel_engine.Dist.constant 800.) ())
  in
  check_bool "14th app rejected" true
    (try
       sys.S.Sched_intf.add_app
         { S.Sched_intf.id = 14; name = "overflow";
           class_ = S.Sched_intf.Latency_critical };
       false
     with Invalid_argument _ -> true);
  sys.S.Sched_intf.start ();
  List.iter (fun g -> W.Openloop.start g ~rate_rps:50_000. ~until:10_000_000) gens;
  Sim.run_until sim 12_000_000;
  sys.S.Sched_intf.stop ();
  List.iter
    (fun g -> check_bool "every app served" true (W.Openloop.served g > 300))
    gens

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "syscall redirection (5.2.4)" `Quick
          test_syscall_redirection;
        Alcotest.test_case "preempt during switch" `Quick
          test_preempt_during_switch;
        Alcotest.test_case "openloop rate change" `Quick
          test_openloop_rate_change;
        Alcotest.test_case "dlopen in live domain" `Quick
          test_dlopen_in_live_domain;
        Alcotest.test_case "13 uprocesses live" `Quick
          test_thirteen_uprocesses_live;
        Alcotest.test_case "Figure-6 trace order" `Quick test_fig6_trace;
      ] );
  ]
